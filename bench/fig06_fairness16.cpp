// Figure 6: fairness (ANTT) and throughput (STP) of DELTA vs. the ideal
// centralized scheme on the 16-core CMP.
//
// Paper result: DELTA trails the ideal scheme by ~2% in ANTT and ~5% in
// STP on average (lower ANTT = fairer, higher STP = more throughput).
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace delta;
  const bench::ProfScope prof(argc, argv);
  bench::print_header("Fig. 6 — ANTT / STP, ideal centralized vs DELTA (16 cores)",
                      "Sec. IV-A, Fig. 6");

  const unsigned jobs = bench::parse_jobs(argc, argv);
  const sim::MachineConfig cfg = sim::config16();
  TextTable table({"mix", "antt(ideal)", "antt(delta)", "stp(ideal)", "stp(delta)"});
  std::vector<double> antt_ratio, stp_ratio;

  const std::vector<std::string> names = bench::all_mix_names();
  const std::vector<sim::SchemeComparison> comps =
      bench::run_comparisons(cfg, names, jobs);
  for (std::size_t m = 0; m < names.size(); ++m) {
    const sim::SchemeComparison& c = comps[m];
    const double ai = sim::antt(c.ideal, c.private_llc);
    const double ad = sim::antt(c.delta, c.private_llc);
    const double si = sim::stp(c.ideal, c.private_llc);
    const double sd = sim::stp(c.delta, c.private_llc);
    antt_ratio.push_back(ad / ai);
    stp_ratio.push_back(sd / si);
    table.add_row({names[m], fmt(ai, 3), fmt(ad, 3), fmt(si, 2), fmt(sd, 2)});
  }

  std::printf("\n%s\n", table.str().c_str());
  std::printf("delta vs ideal: ANTT %+0.1f%% (paper: +2%%, lower is better), "
              "STP %+0.1f%% (paper: -5%%, higher is better)\n",
              (geomean(antt_ratio) - 1.0) * 100.0,
              (geomean(stp_ratio) - 1.0) * 100.0);
  return 0;
}
