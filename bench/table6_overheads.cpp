// Table VI: per-invocation cost of the centralized allocation algorithms
// (Lookahead, Peekahead) for 2..64 cores at 16 ways per core, measured on
// this host; plus the measured software cost of DELTA's inter- and
// intra-bank algorithms (paper: 0.015 ms / 0.007 ms at 64 cores — three
// orders of magnitude below Lookahead's 1230 ms).
//
// Absolute times differ from the paper's host; the *growth shape* is the
// reproduction target: Lookahead super-quadratic, Peekahead ~N*W, DELTA
// constant-per-tile.
#include <chrono>
#include <cstdio>
#include <functional>

#include "alloc/lookahead.hpp"
#include "alloc/peekahead.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/controller.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double time_ms(const std::function<void()>& fn, int reps) {
  const auto t0 = Clock::now();
  for (int i = 0; i < reps; ++i) fn();
  const auto t1 = Clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count() / reps;
}

// Convex miss curves (diminishing marginal utility — the common shape of
// real cache-sensitive applications): Lookahead's best expansion is then a
// single way per award, which is exactly the regime where its O(N*W^2)
// full rescan per award dominates and Peekahead's hull short-cut pays off.
delta::alloc::AllocRequest make_request(int cores, delta::Rng& rng) {
  delta::alloc::AllocRequest req;
  const int total = cores * 16;
  for (int a = 0; a < cores; ++a) {
    std::vector<double> m(static_cast<std::size_t>(total) + 1);
    const double base = 1000.0 + rng.uniform() * 9000.0;
    const double rate = 0.05 + rng.uniform() * 0.5;
    for (int w = 0; w <= total; ++w)
      m[static_cast<std::size_t>(w)] = base / (1.0 + rate * w);
    req.curves.emplace_back(std::move(m));
  }
  req.total_ways = total;
  req.min_ways = 1;
  return req;
}

}  // namespace

int main(int argc, char** argv) {
  const delta::bench::ProfScope prof(argc, argv);
  using namespace delta;
  bench::print_header("Table VI — allocation-algorithm overhead per invocation",
                      "Sec. IV-E1, Table VI");

  Rng rng(2024);
  TextTable table({"cores", "lookahead(ms)", "peekahead(ms)", "la steps", "pa steps"});
  for (int cores : {2, 4, 8, 16, 32, 64}) {
    const alloc::AllocRequest req = make_request(cores, rng);
    const int reps = cores <= 8 ? 20 : (cores <= 16 ? 5 : 1);
    alloc::AllocResult la, pa;
    const double t_la = time_ms([&] { la = alloc::lookahead(req); }, reps);
    const double t_pa = time_ms([&] { pa = alloc::peekahead(req); }, reps);
    table.add_row({std::to_string(cores), fmt(t_la, 3), fmt(t_pa, 3),
                   std::to_string(la.steps), std::to_string(pa.steps)});
    std::fflush(stdout);
  }
  std::printf("\n%s\n", table.str().c_str());

  // DELTA's software cost at 64 cores: one full inter+intra tick.
  noc::Mesh mesh(8, 8);
  core::DeltaParams params;
  params.max_ways_per_app = 768;
  core::DeltaController ctrl(mesh, params, 16);
  umon::UmonConfig ucfg;
  ucfg.max_ways = 768;
  std::vector<umon::Umon> umons;
  umons.reserve(64);
  Rng wr(7);
  for (int i = 0; i < 64; ++i) {
    umons.emplace_back(ucfg);
    for (int a = 0; a < 20'000; ++a) umons.back().access(wr.below(512 * 32));
  }
  std::vector<core::TileInput> inputs(64);
  for (int i = 0; i < 64; ++i)
    inputs[i] = {&umons[static_cast<std::size_t>(i)], 2.0, true,
                 static_cast<std::uint32_t>(i + 1)};
  std::uint64_t e = 0;
  const double t_delta = time_ms(
      [&] {
        ctrl.tick(e, inputs);
        e += 10;  // Every call hits both the inter and intra cadence.
      },
      50);
  std::printf("DELTA inter+intra tick, 64 tiles: %.4f ms per invocation\n", t_delta);
  std::printf("(paper: lookahead 1230 ms, peekahead 13.1 ms, DELTA 0.015+0.007 ms "
              "at 64 cores — expect the same orders-of-magnitude ordering)\n");
  return 0;
}
