// Shared plumbing for the figure/table reproduction harnesses.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "obs/export.hpp"
#include "obs/prof/export.hpp"
#include "sim/runner.hpp"

namespace delta::bench {

/// Self-profiling plumbing shared by every bench main: construct one at the
/// top of main(argc, argv) and the harness grows --prof-out / --metrics-out
/// / --prof-level with the same semantics as delta_sim (explicit level
/// wins; --prof-out implies full, --metrics-out implies phases).  The
/// destructor writes the requested outputs after the harness finishes.
/// With none of the flags present this is level-kOff and writes nothing.
class ProfScope {
 public:
  ProfScope(int argc, char** argv) {
    obs::prof::init_clock();
    const char* level_str = find_value(argc, argv, "--prof-level");
    prof_out_ = value_or_empty(argc, argv, "--prof-out");
    metrics_out_ = value_or_empty(argc, argv, "--metrics-out");
    obs::prof::ProfLevel lvl = obs::prof::ProfLevel::kOff;
    if (level_str != nullptr) {
      if (!obs::prof::parse_prof_level(level_str, &lvl)) {
        std::fprintf(stderr, "unknown --prof-level '%s' (off|phases|full)\n",
                     level_str);
        std::exit(2);
      }
    } else if (!prof_out_.empty()) {
      lvl = obs::prof::ProfLevel::kFull;
    } else if (!metrics_out_.empty()) {
      lvl = obs::prof::ProfLevel::kPhases;
    }
    obs::prof::set_level(lvl);
    Logger::install_flush_handlers();
  }

  ~ProfScope() {
    if (!prof_out_.empty()) {
      const obs::prof::ProfSnapshot snap = obs::prof::Profiler::instance().snapshot();
      if (!obs::write_text_file(prof_out_, obs::prof::prof_trace_json(snap)))
        std::perror(("writing " + prof_out_).c_str());
    }
    if (!metrics_out_.empty()) {
      const obs::prof::RegistrySnapshot reg =
          obs::prof::MetricsRegistry::global().snapshot();
      const bool prom = ends_with(metrics_out_, ".prom") ||
                        ends_with(metrics_out_, ".txt");
      const std::string text =
          prom ? obs::prof::prometheus_text(reg)
               : obs::prof::metrics_json(
                     reg, obs::prof::Profiler::instance().snapshot());
      if (!obs::write_text_file(metrics_out_, text))
        std::perror(("writing " + metrics_out_).c_str());
    }
  }

  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  static const char* find_value(int argc, char** argv, const char* flag) {
    const std::size_t len = std::strlen(flag);
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) return argv[i + 1];
      if (std::strncmp(argv[i], flag, len) == 0 && argv[i][len] == '=')
        return argv[i] + len + 1;
    }
    return nullptr;
  }
  static std::string value_or_empty(int argc, char** argv, const char* flag) {
    const char* v = find_value(argc, argv, flag);
    return v != nullptr ? std::string(v) : std::string();
  }
  static bool ends_with(const std::string& s, const char* suffix) {
    const std::size_t n = std::strlen(suffix);
    return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
  }

  std::string prof_out_;
  std::string metrics_out_;
};

/// Parses `--jobs N` (or `--jobs=N`) from a bench's argv.  0 means "use
/// every hardware thread" — also the default when the flag is absent, so
/// the harnesses parallelise out of the box; `--jobs 1` recovers the
/// serial run (whose output is byte-identical by construction).
///
/// Precedence: explicit flag > DELTA_JOBS environment variable > fallback.
/// The env override is the one shared knob CI (and anyone scripting every
/// fig*/table* harness at once) uses to pin the thread count without
/// editing each invocation.
inline unsigned parse_jobs(int argc, char** argv, unsigned fallback = 0) {
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--jobs") == 0 && i + 1 < argc)
      return static_cast<unsigned>(std::strtoul(argv[i + 1], nullptr, 10));
    if (std::strncmp(a, "--jobs=", 7) == 0)
      return static_cast<unsigned>(std::strtoul(a + 7, nullptr, 10));
  }
  if (const char* env = std::getenv("DELTA_JOBS"); env != nullptr && *env != '\0')
    return static_cast<unsigned>(std::strtoul(env, nullptr, 10));
  return fallback;
}

/// Index-ordered parallel map: `out[i] = fn(i)` for i in [0, n), fanned
/// over `jobs` threads with results in pre-sized slots.  For bench loops
/// whose per-item work is not a full mix run (splash estimates, knob
/// sweeps with bespoke result structs).
template <typename Fn>
auto parallel_map(std::size_t n, unsigned jobs, Fn&& fn) {
  using R = decltype(fn(std::size_t{0}));
  std::vector<R> out(n);
  parallel_for(0, n, [&](std::size_t i) { out[i] = fn(i); }, jobs);
  return out;
}

/// Mix names of Table IV in order.
inline std::vector<std::string> all_mix_names() {
  std::vector<std::string> names;
  for (const auto& m : workload::table4_mixes()) names.push_back(m.name);
  return names;
}

/// The irregular-access mixes (wi1..wi3) — kept separate from
/// all_mix_names() so the paper-figure benches stay on the Table IV set;
/// the shootout and ext_irregular run them in addition.
inline std::vector<std::string> irregular_mix_names() {
  std::vector<std::string> names;
  for (const auto& m : workload::irregular_mixes()) names.push_back(m.name);
  return names;
}

/// Sweep variant: all four schemes on every named mix, fanned over `jobs`
/// threads (0 == hardware concurrency).  Results come back in mix order
/// and are byte-identical to looping run_comparison serially.
inline std::vector<sim::SchemeComparison> run_comparisons(
    const sim::MachineConfig& cfg, const std::vector<std::string>& mix_names,
    unsigned jobs = 0) {
  std::vector<workload::Mix> mixes;
  mixes.reserve(mix_names.size());
  for (const std::string& name : mix_names)
    mixes.push_back(sim::mix_for_config(cfg, name));
  return sim::compare_schemes_sweep(cfg, mixes, jobs);
}

/// Runs all four schemes on `mix_name` at the given machine size, the four
/// runs fanned over `jobs` threads (default: one per scheme).
inline sim::SchemeComparison run_comparison(const sim::MachineConfig& cfg,
                                            const std::string& mix_name,
                                            unsigned jobs = 0) {
  return run_comparisons(cfg, {mix_name}, jobs).front();
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================================\n");
}

/// Geomean-of-speedups summary line across mixes.
inline void print_speedup_summary(const std::string& label,
                                  const std::vector<double>& speedups) {
  std::vector<double> v = speedups;
  double max = 0.0;
  for (double s : v) max = std::max(max, s);
  std::printf("%-16s geomean %+.1f%%  max %+.1f%%\n", label.c_str(),
              (geomean(v) - 1.0) * 100.0, (max - 1.0) * 100.0);
}

}  // namespace delta::bench
