// Shared plumbing for the figure/table reproduction harnesses.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "sim/runner.hpp"

namespace delta::bench {

/// Parses `--jobs N` (or `--jobs=N`) from a bench's argv.  0 means "use
/// every hardware thread" — also the default when the flag is absent, so
/// the harnesses parallelise out of the box; `--jobs 1` recovers the
/// serial run (whose output is byte-identical by construction).
///
/// Precedence: explicit flag > DELTA_JOBS environment variable > fallback.
/// The env override is the one shared knob CI (and anyone scripting every
/// fig*/table* harness at once) uses to pin the thread count without
/// editing each invocation.
inline unsigned parse_jobs(int argc, char** argv, unsigned fallback = 0) {
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--jobs") == 0 && i + 1 < argc)
      return static_cast<unsigned>(std::strtoul(argv[i + 1], nullptr, 10));
    if (std::strncmp(a, "--jobs=", 7) == 0)
      return static_cast<unsigned>(std::strtoul(a + 7, nullptr, 10));
  }
  if (const char* env = std::getenv("DELTA_JOBS"); env != nullptr && *env != '\0')
    return static_cast<unsigned>(std::strtoul(env, nullptr, 10));
  return fallback;
}

/// Index-ordered parallel map: `out[i] = fn(i)` for i in [0, n), fanned
/// over `jobs` threads with results in pre-sized slots.  For bench loops
/// whose per-item work is not a full mix run (splash estimates, knob
/// sweeps with bespoke result structs).
template <typename Fn>
auto parallel_map(std::size_t n, unsigned jobs, Fn&& fn) {
  using R = decltype(fn(std::size_t{0}));
  std::vector<R> out(n);
  parallel_for(0, n, [&](std::size_t i) { out[i] = fn(i); }, jobs);
  return out;
}

/// Mix names of Table IV in order.
inline std::vector<std::string> all_mix_names() {
  std::vector<std::string> names;
  for (const auto& m : workload::table4_mixes()) names.push_back(m.name);
  return names;
}

/// Sweep variant: all four schemes on every named mix, fanned over `jobs`
/// threads (0 == hardware concurrency).  Results come back in mix order
/// and are byte-identical to looping run_comparison serially.
inline std::vector<sim::SchemeComparison> run_comparisons(
    const sim::MachineConfig& cfg, const std::vector<std::string>& mix_names,
    unsigned jobs = 0) {
  std::vector<workload::Mix> mixes;
  mixes.reserve(mix_names.size());
  for (const std::string& name : mix_names)
    mixes.push_back(sim::mix_for_config(cfg, name));
  return sim::compare_schemes_sweep(cfg, mixes, jobs);
}

/// Runs all four schemes on `mix_name` at the given machine size, the four
/// runs fanned over `jobs` threads (default: one per scheme).
inline sim::SchemeComparison run_comparison(const sim::MachineConfig& cfg,
                                            const std::string& mix_name,
                                            unsigned jobs = 0) {
  return run_comparisons(cfg, {mix_name}, jobs).front();
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================================\n");
}

/// Geomean-of-speedups summary line across mixes.
inline void print_speedup_summary(const std::string& label,
                                  const std::vector<double>& speedups) {
  std::vector<double> v = speedups;
  double max = 0.0;
  for (double s : v) max = std::max(max, s);
  std::printf("%-16s geomean %+.1f%%  max %+.1f%%\n", label.c_str(),
              (geomean(v) - 1.0) * 100.0, (max - 1.0) * 100.0);
}

}  // namespace delta::bench
