// Shared plumbing for the figure/table reproduction harnesses.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "sim/runner.hpp"

namespace delta::bench {

/// Mix names of Table IV in order.
inline std::vector<std::string> all_mix_names() {
  std::vector<std::string> names;
  for (const auto& m : workload::table4_mixes()) names.push_back(m.name);
  return names;
}

/// Runs all four schemes on `mix_name` at the given machine size.
inline sim::SchemeComparison run_comparison(const sim::MachineConfig& cfg,
                                            const std::string& mix_name) {
  const workload::Mix mix = sim::mix_for_config(cfg, mix_name);
  return sim::compare_schemes(cfg, mix);
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================================\n");
}

/// Geomean-of-speedups summary line across mixes.
inline void print_speedup_summary(const std::string& label,
                                  const std::vector<double>& speedups) {
  std::vector<double> v = speedups;
  double max = 0.0;
  for (double s : v) max = std::max(max, s);
  std::printf("%-16s geomean %+.1f%%  max %+.1f%%\n", label.c_str(),
              (geomean(v) - 1.0) * 100.0, (max - 1.0) * 100.0);
}

}  // namespace delta::bench
