// Extension: Fig. 12 revisited with the *integrated* multithreaded
// simulation (Sec. II-E executed directly: page classifier + S-NUCA
// fallback + page-flip invalidations + same-process challenge rejection)
// instead of the paper's piecewise reconstruction.  The paper leaves this
// detailed modelling to future work (Sec. IV-C); this harness compares the
// two methods side by side.
#include <cstdio>

#include "bench_util.hpp"
#include "sim/mt_sim.hpp"
#include "sim/splash_estimator.hpp"
#include "workload/splash.hpp"

int main(int argc, char** argv) {
  const delta::bench::ProfScope prof(argc, argv);
  using namespace delta;
  bench::print_header("Extension — integrated multithreaded DELTA vs the paper's estimate",
                      "Sec. II-E / IV-C future-work extension");

  const sim::MachineConfig cfg = sim::config16();
  sim::MtConfig mtc;
  sim::SplashConfig scfg;
  scfg.accesses_per_thread = mtc.accesses_per_thread;

  TextTable table({"app", "delta/snuca (integrated)", "delta/snuca (estimate)",
                   "reclassified pages", "flip-invalidated lines"});
  std::vector<double> integrated, estimated;
  for (const auto& p : workload::splash_profiles()) {
    const sim::MtResult d = sim::run_multithreaded(cfg, p, sim::SchemeKind::kDelta, mtc);
    const sim::MtResult s = sim::run_multithreaded(cfg, p, sim::SchemeKind::kSnuca, mtc);
    const double direct = s.roi_cycles / d.roi_cycles;
    const sim::SplashEstimate e = sim::estimate_splash(p, cfg, scfg);
    integrated.push_back(direct);
    estimated.push_back(e.delta_speedup);
    table.add_row({p.name, fmt(direct, 3), fmt(e.delta_speedup, 3),
                   std::to_string(d.reclassifications),
                   std::to_string(d.page_invalidation_lines)});
    std::fflush(stdout);
  }
  std::printf("\n%s\n", table.str().c_str());
  std::printf("suite geomean speedup over S-NUCA: integrated %.3f, estimate %.3f\n",
              geomean(integrated), geomean(estimated));
  std::printf("(agreement between the two validates the paper's estimation method;\n"
              "the integrated run additionally charges reclassification costs)\n");
  return 0;
}
