#!/usr/bin/env python3
"""Gate a fresh micro_throughput run against the committed reference.

    tools/bench_diff.py BENCH_throughput.json fresh.json [--slack 0.6]

Only machine-independent numbers are gated:
  * cache_kernel.*.new_over_legacy — both engines ran on the same host in
    the same process, so the ratio transfers across machines.  The fresh
    ratio must stay above `slack` times the reference ratio.
  * cache_kernel.replay_identical — the SoA engine replayed the streams
    bit-identically against the frozen legacy oracle; binary, every host.
  * simd.*.simd_over_scalar — same-process ratio like the cache kernel,
    but gated only when the fresh run compiled the same backend as the
    reference (a -DDELTA_NO_SIMD or cross-ISA run measures a different
    kernel; its ~1.0x ratio is printed, not failed).
  * sweep.byte_identical / intra.byte_identical — determinism is binary
    and must hold on every host.
  * engine_health.barriers_per_epoch (v5) — a structural property of the
    intra engine (2 per epoch for the fused pipeline section), identical
    on every host; the fresh value must not exceed the reference.
  * schema — a fresh run on an older schema means the harness and the
    reference have drifted apart; fail loudly rather than compare holes.

Scaling ratios (sweep.speedup and the intra points, v5) are gated with
the same slack — but only when BOTH files ran on a multi-core host.  When
either side records hw_threads == 1 the ratio is ~1x by construction
(see docs/performance.md), so the gate is skipped with a clear message
instead of failing a single-CPU runner.

Absolute accesses/sec are printed for the log but never gated: they
depend on the runner's core count.

Exit status: 0 pass, 1 regression/divergence, 2 usage or malformed input.
"""
import argparse
import json
import re
import sys

SCHEMA_PREFIX = "delta-bench-throughput-v"


def load(path, role):
    try:
        with open(path) as f:
            return json.load(f)
    except FileNotFoundError:
        print(f"bench_diff: {role} file {path!r} does not exist.", file=sys.stderr)
        if role == "reference":
            print("bench_diff: regenerate it with: build/bench/micro_throughput "
                  "--out BENCH_throughput.json", file=sys.stderr)
        sys.exit(2)
    except (OSError, ValueError) as e:
        print(f"bench_diff: cannot read {role} file {path}: {e}", file=sys.stderr)
        sys.exit(2)


def schema_version(doc, path, role):
    """Returns the integer N of 'delta-bench-throughput-vN', exiting with a
    clear message (not a traceback) on anything unparseable."""
    schema = doc.get("schema")
    m = re.fullmatch(re.escape(SCHEMA_PREFIX) + r"(\d+)", str(schema))
    if not m:
        print(f"bench_diff: {role} file {path!r} has unrecognised schema "
              f"{schema!r} (expected {SCHEMA_PREFIX}N)", file=sys.stderr)
        sys.exit(2)
    return int(m.group(1))


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("reference", help="committed BENCH_throughput.json")
    ap.add_argument("fresh", help="JSON from the run under test")
    ap.add_argument("--slack", type=float, default=0.6,
                    help="fresh ratio must be >= slack * reference ratio "
                         "(default 0.6; absorbs shared-runner noise)")
    args = ap.parse_args()

    ref = load(args.reference, "reference")
    new = load(args.fresh, "fresh")
    failures = []

    # Versions must match exactly: a fresh run on an older schema means the
    # harness and the reference drifted apart; compare neither direction.
    # Unknown keys inside a matching version are ignored (forward-compatible
    # additions within a version don't need a reference regeneration).
    ref_v = schema_version(ref, args.reference, "reference")
    new_v = schema_version(new, args.fresh, "fresh")
    if ref_v != new_v:
        older = "reference" if ref_v < new_v else "fresh run"
        print(f"bench_diff: schema mismatch: reference v{ref_v} vs fresh "
              f"v{new_v} — the {older} is on an older schema.", file=sys.stderr)
        print("bench_diff: regenerate the committed reference with: "
              "build/bench/micro_throughput --out BENCH_throughput.json",
              file=sys.stderr)
        sys.exit(2)

    for stream in ("hit_heavy", "thrashing"):
        try:
            r = ref["cache_kernel"][stream]["new_over_legacy"]
            n = new["cache_kernel"][stream]["new_over_legacy"]
        except (KeyError, TypeError):
            failures.append(f"cache_kernel.{stream}.new_over_legacy missing")
            continue
        floor = args.slack * r
        verdict = "ok" if n >= floor else "FAIL"
        print(f"cache_kernel.{stream}: reference {r:.2f}x, fresh {n:.2f}x, "
              f"floor {floor:.2f}x -> {verdict}")
        if n < floor:
            failures.append(f"cache_kernel.{stream} ratio {n:.2f}x below "
                            f"floor {floor:.2f}x ({args.slack} * {r:.2f}x)")

    # v4+: the oracle replay inside the kernel harness is binary.  (v3 files
    # predate the key; the exact-version check above already pairs them only
    # with other v3 files.)
    if new_v >= 4:
        replay = new.get("cache_kernel", {}).get("replay_identical")
        print(f"cache_kernel.replay_identical: {replay}")
        if replay is not True:
            failures.append(
                f"cache_kernel.replay_identical is {replay!r}, not true")

    # v4: per-kernel SIMD-over-scalar ratios.  Ratio-only and gated only
    # when both files measured the same compiled backend; anything else
    # about the section (unknown kernels, missing keys in the reference)
    # prints informationally instead of failing.
    ref_simd = ref.get("simd", {}) if isinstance(ref.get("simd"), dict) else {}
    new_simd = new.get("simd", {}) if isinstance(new.get("simd"), dict) else {}
    same_backend = (ref_simd.get("backend") is not None and
                    ref_simd.get("backend") == new_simd.get("backend"))
    for kernel, v in new_simd.items():
        if not isinstance(v, dict):
            continue
        n = v.get("simd_over_scalar")
        if not isinstance(n, (int, float)):
            continue
        rv = ref_simd.get(kernel)
        r = rv.get("simd_over_scalar") if isinstance(rv, dict) else None
        if same_backend and isinstance(r, (int, float)):
            floor = args.slack * r
            verdict = "ok" if n >= floor else "FAIL"
            print(f"simd.{kernel} [{new_simd.get('backend')}]: reference "
                  f"{r:.2f}x, fresh {n:.2f}x, floor {floor:.2f}x -> {verdict}")
            if n < floor:
                failures.append(f"simd.{kernel} ratio {n:.2f}x below floor "
                                f"{floor:.2f}x ({args.slack} * {r:.2f}x)")
        else:
            why = ("backend differs: reference "
                   f"{ref_simd.get('backend')!r} vs fresh "
                   f"{new_simd.get('backend')!r}" if not same_backend
                   else "not in reference")
            print(f"simd.{kernel}: {n:.2f}x over scalar (not gated; {why})")

    for section in ("sweep", "intra"):
        ident = new.get(section, {}).get("byte_identical")
        print(f"{section}.byte_identical: {ident}")
        if ident is not True:
            failures.append(f"{section}.byte_identical is {ident!r}, not true")

    # v5: structural engine-health gate.  barriers_per_epoch counts pool
    # barrier crossings per simulated epoch — a property of the engine's
    # code shape, not of the host — so any increase over the committed
    # reference is a real architectural regression (e.g. reintroducing a
    # lockstep phase) and fails on every runner.
    if new_v >= 5:
        r = ref.get("engine_health", {}).get("barriers_per_epoch")
        n = new.get("engine_health", {}).get("barriers_per_epoch")
        if not isinstance(r, (int, float)) or not isinstance(n, (int, float)):
            failures.append("engine_health.barriers_per_epoch missing")
        else:
            verdict = "ok" if n <= r + 1e-9 else "FAIL"
            print(f"engine_health.barriers_per_epoch: reference {r:.2f}, "
                  f"fresh {n:.2f} -> {verdict}")
            if n > r + 1e-9:
                failures.append(
                    f"engine_health.barriers_per_epoch rose from {r:.2f} to "
                    f"{n:.2f} (a pool section was added per epoch)")

    # v5: scaling-ratio gates, skipped on single-CPU hosts where the
    # speedup is ~1x by construction and the ratio would only measure
    # scheduler noise.
    def scaling_gates():
        ref_hw = ref.get("hw_threads")
        new_hw = new.get("hw_threads")
        for role, hw in (("reference", ref_hw), ("fresh", new_hw)):
            if not isinstance(hw, (int, float)) or hw <= 1:
                print(f"scaling gates: SKIPPED — {role} run has hw_threads="
                      f"{hw!r} (single hardware thread: speedups are ~1x by "
                      "construction, nothing to gate)")
                return
        r = ref.get("sweep", {}).get("speedup")
        n = new.get("sweep", {}).get("speedup")
        if isinstance(r, (int, float)) and isinstance(n, (int, float)) and r > 0:
            floor = args.slack * r
            verdict = "ok" if n >= floor else "FAIL"
            print(f"sweep.speedup: reference {r:.2f}x, fresh {n:.2f}x, "
                  f"floor {floor:.2f}x -> {verdict}")
            if n < floor:
                failures.append(f"sweep.speedup {n:.2f}x below floor "
                                f"{floor:.2f}x ({args.slack} * {r:.2f}x)")
        ref_pts = {p.get("intra_jobs"): p.get("speedup_vs_serial")
                   for p in ref.get("intra", {}).get("points", [])
                   if isinstance(p, dict)}
        for p in new.get("intra", {}).get("points", []):
            if not isinstance(p, dict):
                continue
            jobs_n = p.get("intra_jobs")
            n = p.get("speedup_vs_serial")
            r = ref_pts.get(jobs_n)
            if (not isinstance(jobs_n, (int, float)) or jobs_n <= 1 or
                    not isinstance(n, (int, float))):
                continue
            if not isinstance(r, (int, float)) or r <= 0:
                print(f"intra --intra-jobs {jobs_n}: {n:.2f}x "
                      "(not gated; no reference point)")
                continue
            floor = args.slack * r
            verdict = "ok" if n >= floor else "FAIL"
            print(f"intra --intra-jobs {jobs_n} speedup: reference {r:.2f}x, "
                  f"fresh {n:.2f}x, floor {floor:.2f}x -> {verdict}")
            if n < floor:
                failures.append(
                    f"intra --intra-jobs {jobs_n} speedup {n:.2f}x below "
                    f"floor {floor:.2f}x ({args.slack} * {r:.2f}x)")

    if new_v >= 5:
        scaling_gates()

    # Informational only (machine-dependent): single-thread throughput and
    # the parallel speedups on this runner.  Scheme keys the reference has
    # never heard of (a newer harness grew a scheme) are fine — warn and
    # print them rather than failing, so adding a scheme doesn't force a
    # reference regeneration.
    ref_schemes = ref.get("simulator", {})
    if not isinstance(ref_schemes, dict):
        ref_schemes = {}
    sim = new.get("simulator", {})
    if not isinstance(sim, dict):
        print(f"bench_diff: warning: simulator section is {type(sim).__name__},"
              " not an object; skipping", file=sys.stderr)
        sim = {}
    for scheme, v in sim.items():
        if not isinstance(v, dict):
            print(f"bench_diff: warning: simulator.{scheme} is not an object; "
                  f"skipping", file=sys.stderr)
            continue
        note = "" if scheme in ref_schemes else ", not in reference"
        print(f"simulator.{scheme}: {v.get('accesses_per_sec', 0):.3g} acc/s "
              f"(not gated{note})")
    scaling_active = (new_v >= 5 and
                      all(isinstance(d.get("hw_threads"), (int, float)) and
                          d.get("hw_threads") > 1 for d in (ref, new)))
    if not scaling_active:
        for p in new.get("intra", {}).get("points", []):
            print(f"intra --intra-jobs {p.get('intra_jobs')}: "
                  f"{p.get('speedup_vs_serial', 0):.2f}x vs serial (not gated; "
                  f"hw_threads={new.get('hw_threads')})")
    irr = new.get("irregular")
    if isinstance(irr, dict):
        print(f"irregular ({irr.get('mix')}, {irr.get('scheme')}): "
              f"{irr.get('accesses_per_sec', 0):.3g} acc/s (not gated)")
    prof = new.get("prof")
    if isinstance(prof, dict):
        phases = prof.get("phase_ms", {})
        breakdown = " ".join(f"{k}={v:.1f}ms" for k, v in phases.items()
                             if isinstance(v, (int, float)))
        print(f"prof ({prof.get('intra_jobs')}-way intra): {breakdown} "
              f"barrier_wait_fraction={prof.get('barrier_wait_fraction')} "
              f"worker_imbalance_ratio={prof.get('worker_imbalance_ratio')} "
              f"(not gated)")

    if failures:
        for f in failures:
            print(f"bench_diff: FAIL: {f}", file=sys.stderr)
        return 1
    print("bench_diff: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
