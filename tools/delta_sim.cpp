// delta_sim — command-line driver for arbitrary partitioning experiments.
//
//   delta_sim --mix w2 --scheme all                    # 16-core, all schemes
//   delta_sim --cores 64 --mix w13 --scheme delta
//   delta_sim --mix w6 --scheme delta --epochs 600 --warmup 100 --csv
//   delta_sim --apps "mc,po,xa,na,ze,hm,ga,gr,li,de,om,bw,so,ca,pe,Ge"
//   delta_sim --mix w2 --scheme ideal --central-ms 100  # Fig. 13 style
//   delta_sim --mix w2 --scheme delta --trace-out t.json  # Perfetto trace
//   delta_sim --mix w2 --scheme all --timeline-csv tl.csv --json summary.json
//   delta_sim --list                                    # apps and mixes
//
// Prints per-application and workload-level results; `--csv` switches to a
// machine-readable format for scripting sweeps.  The observability flags
// (--trace-out / --timeline-csv / --json / --obs-level) are documented in
// docs/observability.md.
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/args.hpp"
#include "common/log.hpp"
#include "obs/export.hpp"
#include "obs/observer.hpp"
#include "obs/prof/export.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "workload/irregular.hpp"
#include "workload/mixes.hpp"
#include "workload/spec.hpp"

namespace {

using namespace delta;

void list_everything() {
  std::printf("applications (Table III):\n");
  for (const auto& p : workload::spec_profiles())
    std::printf("  %-4s %-12s class %-2s\n", p.short_name.c_str(), p.name.c_str(),
                to_string(p.cls).c_str());
  std::printf("\napplications (irregular family):\n");
  for (const auto& p : workload::irregular_profiles())
    std::printf("  %-4s %-12s class %-2s\n", p.short_name.c_str(), p.name.c_str(),
                to_string(p.cls).c_str());
  std::printf("\nmixes (Table IV):\n");
  for (const auto& m : workload::table4_mixes()) {
    std::printf("  %-4s (%s): ", m.name.c_str(), m.composition.c_str());
    for (const auto& a : m.apps) std::printf("%s ", a.c_str());
    std::printf("\n");
  }
  std::printf("\nmixes (irregular):\n");
  for (const auto& m : workload::irregular_mixes()) {
    std::printf("  %-4s (%s): ", m.name.c_str(), m.composition.c_str());
    for (const auto& a : m.apps) std::printf("%s ", a.c_str());
    std::printf("\n");
  }
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(item);
  return out;
}

void print_result(const sim::MixResult& r, const sim::MixResult* baseline, bool csv,
                  std::FILE* text_out) {
  if (csv) {
    std::fputs(sim::csv_rows(r).c_str(), stdout);
    return;
  }
  std::fputs(sim::text_report(r, baseline).c_str(), text_out);
}

/// Resolves the collection level: explicit --obs-level wins, otherwise the
/// requested outputs imply the cheapest level that can feed them.
obs::ObsLevel resolve_obs_level(const ArgParser& args) {
  if (args.has("obs-level")) {
    const std::string lvl = args.get("obs-level");
    if (lvl == "off") return obs::ObsLevel::kOff;
    if (lvl == "summary") return obs::ObsLevel::kSummary;
    if (lvl == "timeline") return obs::ObsLevel::kTimeline;
    if (lvl == "full") return obs::ObsLevel::kFull;
    std::fprintf(stderr, "unknown --obs-level '%s' (off|summary|timeline|full)\n",
                 lvl.c_str());
    std::exit(1);
  }
  if (args.has("trace-out")) return obs::ObsLevel::kFull;
  // The prof flamegraph merges policy events into the span timeline, so the
  // event trace must be on for the merged view to have both halves.
  if (args.has("prof-out")) return obs::ObsLevel::kFull;
  if (args.has("timeline-csv")) return obs::ObsLevel::kTimeline;
  if (args.has("json")) return obs::ObsLevel::kSummary;
  return obs::ObsLevel::kOff;
}

bool write_or_complain(const std::string& path, const std::string& content) {
  if (obs::write_text_file(path, content)) return true;
  std::perror(("writing " + path).c_str());
  return false;
}

/// Resolves the self-profiling level: explicit --prof-level wins, otherwise
/// --prof-out implies full (spans + sites) and --metrics-out implies phases.
obs::prof::ProfLevel resolve_prof_level(const ArgParser& args) {
  if (args.has("prof-level")) {
    obs::prof::ProfLevel lvl;
    if (!obs::prof::parse_prof_level(args.get("prof-level"), &lvl)) {
      std::fprintf(stderr, "unknown --prof-level '%s' (off|phases|full)\n",
                   args.get("prof-level").c_str());
      std::exit(1);
    }
    return lvl;
  }
  if (args.has("prof-out")) return obs::prof::ProfLevel::kFull;
  if (args.has("metrics-out")) return obs::prof::ProfLevel::kPhases;
  return obs::prof::ProfLevel::kOff;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::string suf(suffix);
  return s.size() >= suf.size() && s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const std::vector<std::string> known = {
      "mix",        "apps",         "scheme",   "cores",       "epochs",
      "warmup",     "seed",         "csv",      "list",        "central-ms",
      "trace-out",  "timeline-csv", "json",     "obs-level",   "jobs",
      "intra-jobs", "prof-out",     "prof-level", "metrics-out", "help",
      "intra-pin",  "interleave-batch", "intra-apply-rounds",
  };
  if (!args.unknown_flags(known).empty() || args.has("help")) {
    for (const auto& f : args.unknown_flags(known))
      std::fprintf(stderr, "unknown flag: --%s\n", f.c_str());
    std::fprintf(stderr,
                 "usage: delta_sim [--mix wN | --apps a,b,...] [--scheme "
                 "snuca|private|ideal|delta|carma|lfoc|all]\n"
                 "                 [--cores 16|64] [--epochs N] [--warmup N] "
                 "[--seed S] [--central-ms M] [--csv] [--list]\n"
                 "                 [--trace-out trace.json] [--timeline-csv ts.csv]\n"
                 "                 [--json [summary.json]] "
                 "[--obs-level off|summary|timeline|full]\n"
                 "                 [--jobs N]   (parallel scheme fan-out for "
                 "--scheme all; 0 = all hw threads)\n"
                 "                 [--intra-jobs N]   (threads inside each "
                 "simulation; 1 = serial, 0 = auto;\n"
                 "                                     byte-identical results "
                 "at any value)\n"
                 "                 [--intra-pin]   (pin intra workers to CPUs; "
                 "best-effort, results unchanged)\n"
                 "                 [--interleave-batch N]   (accesses per core "
                 "per round; 0 = compile default;\n"
                 "                                           changes results, "
                 "but serial == intra at any N)\n"
                 "                 [--intra-apply-rounds N]   (apply-task slice "
                 "size in rounds; 0 = auto;\n"
                 "                                             byte-identical "
                 "at any value)\n"
                 "                 [--prof-out prof.json]   (engine "
                 "self-profiling flamegraph, Chrome trace format)\n"
                 "                 [--metrics-out m.json|m.prom]   (metrics "
                 "dump; .prom = Prometheus text)\n"
                 "                 [--prof-level off|phases|full]\n");
    return args.has("help") ? 0 : 1;
  }
  if (args.has("list")) {
    list_everything();
    return 0;
  }

  // Self-profiling setup: pin the clock origin before any worker threads
  // exist and arm the level before chips are constructed, so every span of
  // the run lands in the same timeline.  Flush handlers make sure buffered
  // logs (and nothing else) survive an abort mid-run.
  obs::prof::init_clock();
  obs::prof::set_level(resolve_prof_level(args));
  Logger::install_flush_handlers();

  sim::MachineConfig cfg =
      args.get_int("cores", 16) == 64 ? sim::config64() : sim::config16();
  cfg.measure_epochs = static_cast<int>(args.get_int("epochs", cfg.measure_epochs));
  cfg.warmup_epochs = static_cast<int>(args.get_int("warmup", cfg.warmup_epochs));
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", static_cast<std::int64_t>(cfg.seed)));
  // Intra-run engine threads (sim/intra.hpp): results are byte-identical at
  // any value, so this is safe to combine with every other flag.
  cfg.intra_jobs = static_cast<int>(args.get_int("intra-jobs", 1));
  cfg.intra_pin = args.has("intra-pin");
  cfg.intra_apply_rounds = static_cast<int>(args.get_int("intra-apply-rounds", 0));
  // Part of the determinism contract: changing the batch changes results,
  // but serial and intra engines agree at any given value.
  cfg.interleave_batch =
      static_cast<std::uint32_t>(args.get_int("interleave-batch", 0));

  workload::Mix mix;
  if (args.has("apps")) {
    mix.name = "custom";
    mix.apps = split_csv(args.get("apps"));
    if (static_cast<int>(mix.apps.size()) != cfg.cores) {
      std::fprintf(stderr, "--apps needs exactly %d entries\n", cfg.cores);
      return 1;
    }
    for (const auto& a : mix.apps) {
      if (!workload::has_spec_profile(a) && a != "idle") {
        std::fprintf(stderr, "unknown app '%s' (try --list)\n", a.c_str());
        return 1;
      }
    }
  } else {
    try {
      mix = sim::mix_for_config(cfg, args.get("mix", "w2"));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s (try --list)\n", e.what());
      return 1;
    }
  }

  sim::SchemeOptions opts;
  opts.central_interval_epochs = static_cast<int>(args.get_double("central-ms", 1.0) * 10);

  const bool wants_obs = args.has("trace-out") || args.has("timeline-csv") ||
                         args.has("json") || args.has("obs-level") ||
                         args.has("prof-out");
  std::unique_ptr<obs::Observer> observer;
  if (wants_obs) observer = std::make_unique<obs::Observer>(resolve_obs_level(args));

  const std::string scheme = args.get("scheme", "all");
  const bool csv = args.has("csv");
  // JSON on stdout must stay parseable, so the human report yields to stderr.
  const bool json_stdout = args.has("json") && args.get("json").empty();
  std::FILE* text_out = json_stdout ? stderr : stdout;
  if (csv) std::printf("%s\n", sim::csv_header().c_str());

  // --jobs N fans the four --scheme all runs over N threads (0 = every
  // hardware thread); results are byte-identical to the serial default.
  // With observability outputs each job records into its own observer and
  // the per-job traces are merged back in scheme order — run-major, which
  // is exactly the order a serial observed execution emits (nothing in a
  // trace carries wall time), so the exported files match the serial ones.
  const unsigned jobs =
      static_cast<unsigned>(args.get_int("jobs", 1));

  std::vector<sim::MixResult> results;
  if (scheme == "all") {
    // All six schemes (snuca, private, ideal, delta, carma, lfoc), printed
    // against the snuca baseline with ANTT/STP fairness vs private.
    std::vector<sim::MixResult> r;
    if (jobs != 1 && wants_obs) {
      std::vector<sim::SweepJob> sweep_jobs;
      std::vector<std::unique_ptr<obs::Observer>> job_obs;
      std::vector<obs::Observer*> obs_ptrs;
      for (sim::SchemeKind kind : sim::kAllSchemeKinds) {
        sweep_jobs.push_back(sim::SweepJob{cfg, mix, kind, opts});
        job_obs.push_back(std::make_unique<obs::Observer>(observer->level()));
        obs_ptrs.push_back(job_obs.back().get());
      }
      r = sim::run_sweep_observed(sweep_jobs, obs_ptrs, jobs);
      for (const auto& jo : job_obs) observer->merge_from(*jo);
    } else if (jobs != 1) {
      r = sim::run_schemes_sweep(cfg, {mix}, sim::kAllSchemeKinds, jobs, opts)
              .front();
    } else {
      for (sim::SchemeKind kind : sim::kAllSchemeKinds)
        r.push_back(sim::run_mix(cfg, mix, kind, opts, observer.get()));
    }
    for (const sim::MixResult& one : r) print_result(one, &r[0], csv, text_out);
    if (!csv) {
      const sim::MixResult& priv = r[1];
      std::fprintf(text_out,
                   "\nANTT/STP vs private: ideal %.3f/%.2f, delta %.3f/%.2f, "
                   "carma %.3f/%.2f, lfoc %.3f/%.2f\n",
                   sim::antt(r[2], priv), sim::stp(r[2], priv),
                   sim::antt(r[3], priv), sim::stp(r[3], priv),
                   sim::antt(r[4], priv), sim::stp(r[4], priv),
                   sim::antt(r[5], priv), sim::stp(r[5], priv));
    }
    results = r;
  } else {
    sim::SchemeKind kind;
    if (scheme == "snuca") {
      kind = sim::SchemeKind::kSnuca;
    } else if (scheme == "private") {
      kind = sim::SchemeKind::kPrivate;
    } else if (scheme == "ideal") {
      kind = sim::SchemeKind::kIdealCentralized;
    } else if (scheme == "delta") {
      kind = sim::SchemeKind::kDelta;
    } else if (scheme == "carma") {
      kind = sim::SchemeKind::kCarma;
    } else if (scheme == "lfoc") {
      kind = sim::SchemeKind::kLfoc;
    } else {
      std::fprintf(stderr, "unknown scheme '%s'\n", scheme.c_str());
      return 1;
    }
    const sim::MixResult r = sim::run_mix(cfg, mix, kind, opts, observer.get());
    print_result(r, nullptr, csv, text_out);
    results = {r};
  }

  bool io_ok = true;
  if (args.has("trace-out"))
    io_ok &= write_or_complain(args.get("trace-out"),
                               obs::chrome_trace_json(*observer));
  if (args.has("timeline-csv"))
    io_ok &= write_or_complain(args.get("timeline-csv"),
                               obs::timeline_csv(*observer));
  if (args.has("json")) {
    const std::string summary = sim::json_summary(results, observer.get());
    const std::string path = args.get("json");
    if (path.empty()) {
      std::fputs(summary.c_str(), stdout);
    } else {
      io_ok &= write_or_complain(path, summary);
    }
  }
  if (args.has("prof-out")) {
    const obs::prof::ProfSnapshot snap = obs::prof::Profiler::instance().snapshot();
    io_ok &= write_or_complain(args.get("prof-out"),
                               obs::prof::prof_trace_json(snap, observer.get()));
  }
  if (args.has("metrics-out")) {
    const std::string path = args.get("metrics-out");
    const obs::prof::RegistrySnapshot reg =
        obs::prof::MetricsRegistry::global().snapshot();
    if (ends_with(path, ".prom") || ends_with(path, ".txt")) {
      io_ok &= write_or_complain(path, obs::prof::prometheus_text(reg));
    } else {
      const obs::prof::ProfSnapshot snap =
          obs::prof::Profiler::instance().snapshot();
      io_ok &= write_or_complain(path, obs::prof::metrics_json(reg, snap));
    }
  }
  return io_ok ? 0 : 1;
}
