// delta_sim — command-line driver for arbitrary partitioning experiments.
//
//   delta_sim --mix w2 --scheme all                    # 16-core, all schemes
//   delta_sim --cores 64 --mix w13 --scheme delta
//   delta_sim --mix w6 --scheme delta --epochs 600 --warmup 100 --csv
//   delta_sim --apps "mc,po,xa,na,ze,hm,ga,gr,li,de,om,bw,so,ca,pe,Ge"
//   delta_sim --mix w2 --scheme ideal --central-ms 100  # Fig. 13 style
//   delta_sim --list                                    # apps and mixes
//
// Prints per-application and workload-level results; `--csv` switches to a
// machine-readable format for scripting sweeps.
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "common/args.hpp"
#include "common/stats.hpp"
#include "sim/runner.hpp"
#include "workload/spec.hpp"

namespace {

using namespace delta;

void list_everything() {
  std::printf("applications (Table III):\n");
  for (const auto& p : workload::spec_profiles())
    std::printf("  %-4s %-12s class %-2s\n", p.short_name.c_str(), p.name.c_str(),
                to_string(p.cls).c_str());
  std::printf("\nmixes (Table IV):\n");
  for (const auto& m : workload::table4_mixes()) {
    std::printf("  %-4s (%s): ", m.name.c_str(), m.composition.c_str());
    for (const auto& a : m.apps) std::printf("%s ", a.c_str());
    std::printf("\n");
  }
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(item);
  return out;
}

void print_result(const sim::MixResult& r, const sim::MixResult* snuca_ref, bool csv) {
  if (csv) {
    for (const auto& a : r.apps)
      std::printf("%s,%s,%d,%s,%.4f,%.4f,%.2f,%.2f,%.1f\n", r.mix.c_str(),
                  r.scheme.c_str(), a.core, a.app.c_str(), a.ipc, a.miss_rate,
                  a.avg_latency, a.avg_hops, a.avg_ways);
    return;
  }
  std::printf("\n== %s on %s ==\n", r.scheme.c_str(), r.mix.c_str());
  TextTable t({"core", "app", "ipc", "mpki", "miss%", "lat", "hops", "ways"});
  for (const auto& a : r.apps)
    t.add_row({std::to_string(a.core), a.app, fmt(a.ipc, 3), fmt(a.mpki, 1),
               fmt(100 * a.miss_rate, 1), fmt(a.avg_latency, 1), fmt(a.avg_hops, 2),
               fmt(a.avg_ways, 1)});
  std::printf("%s", t.str().c_str());
  std::printf("workload geomean IPC %.4f", r.geomean_ipc);
  if (snuca_ref != nullptr && snuca_ref != &r)
    std::printf("  (%.3fx vs snuca)", sim::speedup(r, *snuca_ref));
  std::printf("; control msgs %llu, demand msgs %llu, invalidated lines %llu\n",
              static_cast<unsigned long long>(r.traffic.control_messages()),
              static_cast<unsigned long long>(r.traffic.demand_messages()),
              static_cast<unsigned long long>(r.invalidated_lines));
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const std::vector<std::string> known = {
      "mix",  "apps",   "scheme", "cores",      "epochs", "warmup",
      "seed", "csv",    "list",   "central-ms", "help",
  };
  if (!args.unknown_flags(known).empty() || args.has("help")) {
    for (const auto& f : args.unknown_flags(known))
      std::fprintf(stderr, "unknown flag: --%s\n", f.c_str());
    std::fprintf(stderr,
                 "usage: delta_sim [--mix wN | --apps a,b,...] [--scheme "
                 "snuca|private|ideal|delta|all]\n"
                 "                 [--cores 16|64] [--epochs N] [--warmup N] "
                 "[--seed S] [--central-ms M] [--csv] [--list]\n");
    return args.has("help") ? 0 : 1;
  }
  if (args.has("list")) {
    list_everything();
    return 0;
  }

  sim::MachineConfig cfg =
      args.get_int("cores", 16) == 64 ? sim::config64() : sim::config16();
  cfg.measure_epochs = static_cast<int>(args.get_int("epochs", cfg.measure_epochs));
  cfg.warmup_epochs = static_cast<int>(args.get_int("warmup", cfg.warmup_epochs));
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", static_cast<std::int64_t>(cfg.seed)));

  workload::Mix mix;
  if (args.has("apps")) {
    mix.name = "custom";
    mix.apps = split_csv(args.get("apps"));
    if (static_cast<int>(mix.apps.size()) != cfg.cores) {
      std::fprintf(stderr, "--apps needs exactly %d entries\n", cfg.cores);
      return 1;
    }
    for (const auto& a : mix.apps) {
      if (!workload::has_spec_profile(a) && a != "idle") {
        std::fprintf(stderr, "unknown app '%s' (try --list)\n", a.c_str());
        return 1;
      }
    }
  } else {
    try {
      mix = sim::mix_for_config(cfg, args.get("mix", "w2"));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s (try --list)\n", e.what());
      return 1;
    }
  }

  sim::SchemeOptions opts;
  opts.central_interval_epochs = static_cast<int>(args.get_double("central-ms", 1.0) * 10);

  const std::string scheme = args.get("scheme", "all");
  const bool csv = args.has("csv");
  if (csv)
    std::printf("mix,scheme,core,app,ipc,miss_rate,avg_latency,avg_hops,avg_ways\n");

  if (scheme == "all") {
    const sim::SchemeComparison c = sim::compare_schemes(cfg, mix);
    print_result(c.snuca, &c.snuca, csv);
    print_result(c.private_llc, &c.snuca, csv);
    print_result(c.ideal, &c.snuca, csv);
    print_result(c.delta, &c.snuca, csv);
    if (!csv) {
      std::printf("\nANTT/STP vs private: ideal %.3f/%.2f, delta %.3f/%.2f\n",
                  sim::antt(c.ideal, c.private_llc), sim::stp(c.ideal, c.private_llc),
                  sim::antt(c.delta, c.private_llc), sim::stp(c.delta, c.private_llc));
    }
    return 0;
  }

  sim::SchemeKind kind;
  if (scheme == "snuca") {
    kind = sim::SchemeKind::kSnuca;
  } else if (scheme == "private") {
    kind = sim::SchemeKind::kPrivate;
  } else if (scheme == "ideal") {
    kind = sim::SchemeKind::kIdealCentralized;
  } else if (scheme == "delta") {
    kind = sim::SchemeKind::kDelta;
  } else {
    std::fprintf(stderr, "unknown scheme '%s'\n", scheme.c_str());
    return 1;
  }
  const sim::MixResult r = sim::run_mix(cfg, mix, kind, opts);
  print_result(r, nullptr, csv);
  return 0;
}
