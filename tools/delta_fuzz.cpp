// delta_fuzz: deterministic seeded fuzzing of the simulator under the
// chip-wide invariant checker and the differential-scheme oracle.
//
//   delta_fuzz --seeds 25 --threads 2          # fuzz batch + determinism
//   delta_fuzz --repro 983378                  # re-run one failing seed
//   delta_fuzz --seeds 50 --out-dir fuzz-out   # write artifacts for CI
//
// Exit status is 0 only when every case is violation-free and the batch is
// reproducible byte-for-byte across thread counts.  See docs/testing.md.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "check/fuzz.hpp"
#include "common/args.hpp"
#include "common/log.hpp"
#include "obs/export.hpp"
#include "obs/prof/export.hpp"

namespace {

constexpr const char* kUsage = R"(delta_fuzz - invariant fuzz harness

Options:
  --seeds N           Number of fuzz cases (default 25).
  --seed-base S       First seed; case i uses S+i (default 983378).
  --threads N         Worker threads for the batch (default 1).
  --intra-jobs N      Worker threads inside each simulation (default 1;
                      0 = hardware threads).  Byte-identical at any value,
                      so combined with the determinism check this drives
                      the intra-run engine end to end.
  --intra-pin         Pin intra-run workers to CPUs (best-effort, no-op on
                      unsupported hosts; never affects results).
  --repro SEED        Run exactly one seed, verbose, and exit.
  --sweep-interval N  Residency-sweep cadence in epochs (default 4, 0 = off).
  --out-dir DIR       Write summary JSON + per-failure reports into DIR.
  --no-invariants     Skip the per-epoch invariant checker.
  --no-differential   Skip the cross-scheme oracle.
  --no-determinism    Skip the 1-vs-N-thread byte-identity check.
  --no-lockstep       Use the measured-CPI feedback loop (disables the
                      cross-scheme access-equality assertion).
  --prof-out F        Engine self-profiling flamegraph (Chrome trace JSON).
  --metrics-out F     Metrics dump (.prom = Prometheus text, else JSON).
  --prof-level L      off|phases|full (default: implied by the outputs).
  --help              This text.
)";

void print_case_failure(const delta::check::FuzzCaseResult& c) {
  std::printf("FAIL seed %llu (mix: %s): %zu violation(s)\n",
              static_cast<unsigned long long>(c.seed), c.mix_desc.c_str(),
              c.violations.size());
  for (const auto& v : c.violations)
    std::printf("  %s\n", delta::check::to_string(v).c_str());
}

void write_artifacts(const std::string& dir,
                     const delta::check::FuzzReport& report,
                     const delta::check::DeterminismReport& det,
                     bool det_checked) {
  std::filesystem::create_directories(dir);
  std::ofstream summary(dir + "/fuzz-summary.json");
  summary << "{\n  \"cases\": " << report.cases.size()
          << ",\n  \"failures\": " << report.failures
          << ",\n  \"deterministic\": "
          << (det_checked ? (det.ok ? "true" : "false") : "null")
          << ",\n  \"failing_seeds\": [";
  bool first = true;
  for (const auto& c : report.cases) {
    if (c.ok) continue;
    summary << (first ? "" : ", ") << c.seed;
    first = false;
  }
  summary << "]\n}\n";

  for (const auto& c : report.cases) {
    if (c.ok) continue;
    std::ofstream f(dir + "/seed-" + std::to_string(c.seed) + ".txt");
    f << "seed: " << c.seed << "\nmix: " << c.mix_desc << "\n\n";
    for (const auto& v : c.violations) f << delta::check::to_string(v) << "\n";
    f << "\n--- json summary ---\n" << c.json;
  }
  if (det_checked && !det.ok)
    std::ofstream(dir + "/determinism.txt") << det.detail << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  delta::ArgParser args(argc, argv);
  const std::vector<std::string> known = {
      "seeds",          "seed-base",      "threads",       "intra-jobs",
      "repro",          "sweep-interval", "out-dir",       "no-invariants",
      "no-differential","no-determinism", "no-lockstep",   "prof-out",
      "metrics-out",    "prof-level",     "intra-pin",     "help"};
  const auto unknown = args.unknown_flags(known);
  if (!unknown.empty()) {
    for (const auto& f : unknown)
      std::fprintf(stderr, "unknown flag: --%s\n", f.c_str());
    std::fputs(kUsage, stderr);
    return 2;
  }
  if (args.has("help")) {
    std::fputs(kUsage, stdout);
    return 0;
  }

  // Self-profiling: same flag semantics as delta_sim (explicit level wins,
  // otherwise --prof-out implies full and --metrics-out implies phases).
  delta::obs::prof::init_clock();
  {
    delta::obs::prof::ProfLevel lvl = delta::obs::prof::ProfLevel::kOff;
    if (args.has("prof-level")) {
      if (!delta::obs::prof::parse_prof_level(args.get("prof-level"), &lvl)) {
        std::fprintf(stderr, "unknown --prof-level '%s' (off|phases|full)\n",
                     args.get("prof-level").c_str());
        return 2;
      }
    } else if (args.has("prof-out")) {
      lvl = delta::obs::prof::ProfLevel::kFull;
    } else if (args.has("metrics-out")) {
      lvl = delta::obs::prof::ProfLevel::kPhases;
    }
    delta::obs::prof::set_level(lvl);
  }
  delta::Logger::install_flush_handlers();

  delta::check::FuzzOptions opt;
  opt.base_seed =
      static_cast<std::uint64_t>(args.get_int("seed-base", 0xF0552));
  opt.cases = static_cast<int>(args.get_int("seeds", 25));
  opt.threads = static_cast<unsigned>(args.get_int("threads", 1));
  opt.intra_jobs = static_cast<int>(args.get_int("intra-jobs", 1));
  opt.intra_pin = args.has("intra-pin");
  opt.sweep_interval = static_cast<int>(args.get_int("sweep-interval", 4));
  opt.lockstep = !args.has("no-lockstep");
  opt.check_invariants = !args.has("no-invariants");
  opt.differential = !args.has("no-differential") && opt.lockstep;

  if (args.has("repro")) {
    const auto seed = static_cast<std::uint64_t>(args.get_int("repro", 0));
    const auto c = delta::check::run_fuzz_case(seed, opt);
    std::printf("seed %llu mix: %s\n", static_cast<unsigned long long>(seed),
                c.mix_desc.c_str());
    if (c.ok) {
      std::printf("OK: no violations\n");
      return 0;
    }
    print_case_failure(c);
    return 1;
  }

  const delta::check::FuzzReport report = delta::check::run_fuzz(opt);
  for (const auto& c : report.cases)
    if (!c.ok) print_case_failure(c);
  std::printf("fuzz: %zu case(s), %d failure(s)\n", report.cases.size(),
              report.failures);

  delta::check::DeterminismReport det;
  const bool det_checked = !args.has("no-determinism");
  if (det_checked) {
    // 1 worker vs the requested count: catches cross-thread divergence, and
    // (since each batch reruns every seed) run-to-run nondeterminism too.
    const unsigned many = opt.threads > 1 ? opt.threads : 2;
    det = delta::check::verify_determinism(opt, 1, many);
    if (det.ok)
      std::printf("determinism: OK (1 vs %u threads, byte-identical)\n", many);
    else
      std::printf("determinism: FAIL %s\n", det.detail.c_str());
  }

  const std::string out_dir = args.get("out-dir");
  if (!out_dir.empty()) write_artifacts(out_dir, report, det, det_checked);

  bool io_ok = true;
  if (args.has("prof-out")) {
    const auto snap = delta::obs::prof::Profiler::instance().snapshot();
    io_ok &= delta::obs::write_text_file(args.get("prof-out"),
                                         delta::obs::prof::prof_trace_json(snap));
    if (!io_ok) std::perror(("writing " + args.get("prof-out")).c_str());
  }
  if (args.has("metrics-out")) {
    const std::string path = args.get("metrics-out");
    const auto reg = delta::obs::prof::MetricsRegistry::global().snapshot();
    const bool prom = path.size() >= 5 && path.compare(path.size() - 5, 5, ".prom") == 0;
    const std::string text =
        prom ? delta::obs::prof::prometheus_text(reg)
             : delta::obs::prof::metrics_json(
                   reg, delta::obs::prof::Profiler::instance().snapshot());
    if (!delta::obs::write_text_file(path, text)) {
      std::perror(("writing " + path).c_str());
      io_ok = false;
    }
  }

  return report.ok() && (!det_checked || det.ok) && io_ok ? 0 : 1;
}
