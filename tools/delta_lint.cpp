// delta_lint CLI: runs the project determinism/hygiene rules plus the
// semantic layer (phase-effect, layering, include-cycle — src/lint) over
// one or more source trees and prints one `file:line: rule: detail` per
// violation.  Exit status: 0 clean, 1 violations, 2 usage error.
//
// Flags:
//   --rule a,b,...      run only the named rules (default: all)
//   --baseline FILE     waive findings listed as `<file>:<rule>` lines
//   --json OUT|-        machine-readable findings ({"version":1,...})
//   --fix-suggestions   print the exact suppression/annotation line per
//                       finding, when one applies
//
// Registered as the `delta_lint` ctest (label `lint`) and, for the
// semantic rules, as `delta_lint_semantic` (label `lint-semantic`), so the
// plain tier-1 `ctest` run fails on any violation.  See
// docs/static-analysis.md for the rule catalogue and annotation grammar.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace {

std::vector<std::string> split_csv(const char* s) {
  std::vector<std::string> out;
  std::string cur;
  for (const char* p = s; *p != '\0'; ++p) {
    if (*p == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += *p;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string to_json(const std::vector<delta::lint::Finding>& findings) {
  std::string out = "{\"version\":1,\"findings\":[";
  bool first = true;
  for (const auto& f : findings) {
    if (!first) out += ",";
    first = false;
    out += "{\"file\":\"" + json_escape(f.file) +
           "\",\"line\":" + std::to_string(f.line) + ",\"rule\":\"" +
           json_escape(f.rule) + "\",\"detail\":\"" + json_escape(f.detail) +
           "\",\"suggestion\":\"" + json_escape(f.suggestion) + "\"}";
  }
  out += "],\"count\":" + std::to_string(findings.size()) + "}\n";
  return out;
}

int usage() {
  std::fprintf(stderr,
               "usage: delta_lint [--rule a,b,...] [--baseline FILE] "
               "[--json OUT|-] [--fix-suggestions] <source-dir>...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  delta::lint::TreeOptions opts;
  const char* baseline_path = nullptr;
  const char* json_path = nullptr;
  bool fix_suggestions = false;
  std::vector<const char*> roots;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--rule") == 0) {
      if (++i >= argc) return usage();
      for (std::string& r : split_csv(argv[i]))
        opts.rules.push_back(std::move(r));
    } else if (std::strcmp(arg, "--baseline") == 0) {
      if (++i >= argc) return usage();
      baseline_path = argv[i];
    } else if (std::strcmp(arg, "--json") == 0) {
      if (++i >= argc) return usage();
      json_path = argv[i];
    } else if (std::strcmp(arg, "--fix-suggestions") == 0) {
      fix_suggestions = true;
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "delta_lint: unknown flag '%s'\n", arg);
      return usage();
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) return usage();

  std::vector<delta::lint::Finding> findings;
  for (const char* root : roots)
    for (auto& f : delta::lint::lint_tree(root, opts))
      findings.push_back(std::move(f));

  std::size_t waived = 0;
  if (baseline_path != nullptr) {
    bool ok = false;
    const auto baseline = delta::lint::load_baseline(baseline_path, &ok);
    if (!ok) {
      std::fprintf(stderr, "delta_lint: cannot read baseline '%s'\n",
                   baseline_path);
      return 2;
    }
    waived = delta::lint::apply_baseline(baseline, findings);
  }

  if (json_path != nullptr) {
    const std::string json = to_json(findings);
    if (std::strcmp(json_path, "-") == 0) {
      std::fputs(json.c_str(), stdout);
    } else {
      std::ofstream out(json_path);
      if (!out) {
        std::fprintf(stderr, "delta_lint: cannot write '%s'\n", json_path);
        return 2;
      }
      out << json;
    }
  }

  for (const auto& f : findings) {
    std::fprintf(stderr, "%s\n", delta::lint::format(f).c_str());
    if (fix_suggestions && !f.suggestion.empty())
      std::fprintf(stderr, "  fix: %s\n", f.suggestion.c_str());
  }
  if (waived != 0)
    std::fprintf(stderr, "delta_lint: %zu finding(s) waived by baseline\n",
                 waived);
  if (!findings.empty()) {
    std::fprintf(stderr, "delta_lint: %zu violation(s)\n", findings.size());
    return 1;
  }
  std::printf("delta_lint: clean\n");
  return 0;
}
