// delta_lint CLI: runs the project determinism/hygiene rules (src/lint)
// over one or more source trees and prints one `file:line: rule: detail`
// per violation.  Exit status: 0 clean, 1 violations, 2 usage error.
//
// Registered as the `delta_lint` ctest (label `lint`) over <repo>/src, so
// `ctest -L lint` — and the plain tier-1 `ctest` run — fail on any
// violation.  See docs/static-analysis.md for the rule catalogue and the
// `// delta-lint: allow(<rule>)` suppression syntax.
#include <cstdio>

#include "lint/lint.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: delta_lint <source-dir>...\n");
    return 2;
  }
  std::size_t total = 0;
  for (int i = 1; i < argc; ++i) {
    const auto findings = delta::lint::lint_tree(argv[i]);
    for (const auto& f : findings)
      std::fprintf(stderr, "%s\n", delta::lint::format(f).c_str());
    total += findings.size();
  }
  if (total != 0) {
    std::fprintf(stderr, "delta_lint: %zu violation(s)\n", total);
    return 1;
  }
  std::printf("delta_lint: clean\n");
  return 0;
}
