#!/usr/bin/env python3
"""Unit tests for tools/bench_diff.py (run as a ctest: python3 -m unittest).

The gate's contract, pinned here:
  * matching schemas with healthy ratios pass (exit 0);
  * unknown scheme keys in the fresh simulator section — a newer harness
    grew a scheme the committed reference has never heard of — warn but do
    NOT fail, and malformed (non-object) entries are skipped with a warning;
  * a cache-kernel ratio below the slack floor fails (exit 1);
  * engine_health.barriers_per_epoch (v5) is structural: any increase over
    the reference fails on every host, and a missing value fails too;
  * the sweep/intra scaling-ratio gates (v5) fail on a regression when both
    runs were multi-core, and are SKIPPED with a clear message when either
    side recorded hw_threads == 1;
  * a schema mismatch is a usage error (exit 2).
"""
import json
import os
import subprocess
import sys
import tempfile
import unittest

TOOL = os.path.join(os.path.dirname(os.path.abspath(__file__)), "bench_diff.py")


def doc(schema="delta-bench-throughput-v5", hit=2.0, thrash=1.5,
        simulator=None, backend="sse2", match=3.0, find=2.0,
        hw_threads=1, sweep_speedup=1.0, intra8=1.0,
        barriers_per_epoch=2.0):
    return {
        "schema": schema,
        "hw_threads": hw_threads,
        "cache_kernel": {
            "replay_identical": True,
            "hit_heavy": {"new_over_legacy": hit},
            "thrashing": {"new_over_legacy": thrash},
        },
        "simd": {
            "backend": backend,
            "match_u64": {"simd_over_scalar": match},
            "find_u64": {"simd_over_scalar": find},
        },
        "irregular": {"mix": "wi1", "scheme": "delta",
                      "accesses_per_sec": 5e5},
        "sweep": {"byte_identical": True, "speedup": sweep_speedup},
        "intra": {"byte_identical": True, "points": [
            {"intra_jobs": 1, "speedup_vs_serial": 1.0},
            {"intra_jobs": 8, "speedup_vs_serial": intra8},
        ]},
        "engine_health": {"barriers_per_epoch": barriers_per_epoch,
                          "tasks_per_epoch": 200.0,
                          "steal_fraction": 0.1,
                          "stage_apply_overlap_fraction": 0.5},
        "simulator": simulator if simulator is not None
        else {"snuca": {"accesses_per_sec": 1e6}},
    }


class BenchDiffTest(unittest.TestCase):
    def run_diff(self, ref, fresh, *extra):
        with tempfile.TemporaryDirectory() as d:
            ref_path = os.path.join(d, "ref.json")
            fresh_path = os.path.join(d, "fresh.json")
            with open(ref_path, "w") as f:
                json.dump(ref, f)
            with open(fresh_path, "w") as f:
                json.dump(fresh, f)
            return subprocess.run(
                [sys.executable, TOOL, ref_path, fresh_path, *extra],
                capture_output=True, text=True)

    def test_healthy_run_passes(self):
        r = self.run_diff(doc(), doc())
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("bench_diff: PASS", r.stdout)

    def test_unknown_scheme_keys_warn_but_pass(self):
        fresh = doc(simulator={
            "snuca": {"accesses_per_sec": 1e6},
            "carma": {"accesses_per_sec": 9e5},   # Not in the reference.
            "lfoc": {"accesses_per_sec": 8e5},    # Not in the reference.
            "bogus": "not-an-object",             # Malformed entry.
        })
        r = self.run_diff(doc(), fresh)
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("simulator.carma", r.stdout)
        self.assertIn("not in reference", r.stdout)
        self.assertIn("simulator.bogus is not an object", r.stderr)
        self.assertIn("bench_diff: PASS", r.stdout)

    def test_simulator_section_wrong_type_warns_but_passes(self):
        fresh = doc()
        fresh["simulator"] = ["not", "a", "dict"]
        r = self.run_diff(doc(), fresh)
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("simulator section is list", r.stderr)

    def test_kernel_regression_fails(self):
        r = self.run_diff(doc(hit=2.0), doc(hit=0.5))
        self.assertEqual(r.returncode, 1)
        self.assertIn("below", r.stderr)

    def test_byte_divergence_fails(self):
        fresh = doc()
        fresh["intra"]["byte_identical"] = False
        r = self.run_diff(doc(), fresh)
        self.assertEqual(r.returncode, 1)

    def test_replay_divergence_fails(self):
        fresh = doc()
        fresh["cache_kernel"]["replay_identical"] = False
        r = self.run_diff(doc(), fresh)
        self.assertEqual(r.returncode, 1)
        self.assertIn("replay_identical", r.stderr)

    def test_simd_ratio_regression_fails_on_same_backend(self):
        r = self.run_diff(doc(match=3.0), doc(match=1.0))
        self.assertEqual(r.returncode, 1)
        self.assertIn("simd.match_u64", r.stderr)

    def test_simd_not_gated_across_backends(self):
        # A scalar-fallback or cross-ISA run measures a different kernel:
        # its ~1.0x ratios print informationally instead of failing.
        r = self.run_diff(doc(backend="sse2"),
                          doc(backend="scalar", match=1.0, find=1.0))
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("not gated", r.stdout)
        self.assertIn("backend differs", r.stdout)

    def test_schema_mismatch_is_usage_error(self):
        r = self.run_diff(doc(), doc(schema="delta-bench-throughput-v999"))
        self.assertEqual(r.returncode, 2)
        self.assertIn("schema mismatch", r.stderr)

    def test_barriers_per_epoch_increase_fails(self):
        r = self.run_diff(doc(barriers_per_epoch=2.0),
                          doc(barriers_per_epoch=6.0))
        self.assertEqual(r.returncode, 1)
        self.assertIn("barriers_per_epoch", r.stderr)

    def test_barriers_per_epoch_equal_passes(self):
        r = self.run_diff(doc(barriers_per_epoch=2.0),
                          doc(barriers_per_epoch=2.0))
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("engine_health.barriers_per_epoch", r.stdout)

    def test_missing_engine_health_fails_on_v5(self):
        fresh = doc()
        del fresh["engine_health"]
        r = self.run_diff(doc(), fresh)
        self.assertEqual(r.returncode, 1)
        self.assertIn("engine_health.barriers_per_epoch missing", r.stderr)

    def test_scaling_gates_skipped_on_single_cpu_reference(self):
        # The committed reference was generated on a 1-thread host: the
        # scaling ratios are ~1x by construction there, so a fast fresh run
        # must not be gated against them (and vice versa).
        r = self.run_diff(doc(hw_threads=1),
                          doc(hw_threads=8, sweep_speedup=3.0, intra8=4.0))
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("scaling gates: SKIPPED", r.stdout)
        self.assertIn("hw_threads=1", r.stdout)

    def test_scaling_gates_skipped_on_single_cpu_fresh(self):
        r = self.run_diff(doc(hw_threads=8, sweep_speedup=3.0, intra8=4.0),
                          doc(hw_threads=1))
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("scaling gates: SKIPPED", r.stdout)

    def test_scaling_regression_fails_on_multicore(self):
        r = self.run_diff(doc(hw_threads=8, sweep_speedup=3.0, intra8=4.0),
                          doc(hw_threads=8, sweep_speedup=3.0, intra8=1.0))
        self.assertEqual(r.returncode, 1)
        self.assertIn("intra --intra-jobs 8", r.stderr)

    def test_healthy_scaling_passes_on_multicore(self):
        r = self.run_diff(doc(hw_threads=8, sweep_speedup=3.0, intra8=4.0),
                          doc(hw_threads=8, sweep_speedup=2.8, intra8=4.2))
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("intra --intra-jobs 8 speedup", r.stdout)


if __name__ == "__main__":
    unittest.main()
