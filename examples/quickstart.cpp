// Quickstart: simulate a 16-core tiled CMP running a heterogeneous
// multi-programmed mix under DELTA and print per-application results.
//
//   $ ./quickstart
//
// Walks through the three public-API layers: machine configuration,
// workload selection, and the scheme-parameterized chip simulator.
#include <cstdio>

#include "common/stats.hpp"
#include "sim/runner.hpp"

int main() {
  using namespace delta;

  // 1. Machine: the paper's 16-core Table II configuration.  Shorten the
  //    run so the example completes in a couple of seconds.
  sim::MachineConfig cfg = sim::config16();
  cfg.warmup_epochs = 40;
  cfg.measure_epochs = 150;

  // 2. Workload: one of the Table IV mixes (w6 mixes all four classes).
  const workload::Mix mix = sim::mix_for_config(cfg, "w6");

  // 3. Run DELTA and the unpartitioned S-NUCA baseline on identical
  //    workload streams.
  const sim::MixResult snuca = sim::run_mix(cfg, mix, sim::SchemeKind::kSnuca);
  const sim::MixResult delta = sim::run_mix(cfg, mix, sim::SchemeKind::kDelta);

  TextTable table({"core", "app", "ipc(snuca)", "ipc(delta)", "speedup", "ways", "hops"});
  for (std::size_t i = 0; i < delta.apps.size(); ++i) {
    const auto& d = delta.apps[i];
    const auto& s = snuca.apps[i];
    table.add_row({std::to_string(i), d.app, fmt(s.ipc, 3), fmt(d.ipc, 3),
                   fmt(d.ipc / s.ipc, 3), fmt(d.avg_ways, 1), fmt(d.avg_hops, 2)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("workload speedup (geomean IPC) DELTA vs S-NUCA: %.3f\n",
              sim::speedup(delta, snuca));
  std::printf("control-plane traffic: %llu msgs vs %llu demand msgs\n",
              static_cast<unsigned long long>(delta.traffic.control_messages()),
              static_cast<unsigned long long>(delta.traffic.demand_messages()));
  return 0;
}
