// Performance-isolation demo (the abstract's QoS claim): a cache-sensitive
// victim (sphinx3) shares the chip with an increasing number of thrashers
// (libquantum).  Under unpartitioned S-NUCA the thrashers destroy the
// victim's LLC contents; DELTA's strict partitions contain them.
//
//   $ ./isolation_demo
#include <cstdio>
#include <vector>

#include "common/stats.hpp"
#include "sim/runner.hpp"

int main() {
  using namespace delta;
  sim::MachineConfig cfg = sim::config16();
  cfg.warmup_epochs = 40;
  cfg.measure_epochs = 150;

  std::printf("victim: sphinx3 on tile 5; aggressors: libquantum copies.\n\n");
  TextTable table({"thrashers", "victim ipc (snuca)", "victim ipc (delta)",
                   "snuca loss", "delta loss"});

  double base_snuca = 0.0, base_delta = 0.0;
  for (int thrashers : {0, 4, 8, 12}) {
    std::vector<std::string> apps(16, "idle");
    apps[5] = "sp";
    for (int i = 0; i < thrashers; ++i) apps[(6 + i) % 16 == 5 ? 15 : (6 + i) % 16] = "li";

    workload::Mix mix;
    mix.name = "iso" + std::to_string(thrashers);
    mix.apps = apps;
    const sim::MixResult snuca = sim::run_mix(cfg, mix, sim::SchemeKind::kSnuca);
    const sim::MixResult dlt = sim::run_mix(cfg, mix, sim::SchemeKind::kDelta);
    const double vs = snuca.apps[5].ipc;
    const double vd = dlt.apps[5].ipc;
    if (thrashers == 0) {
      base_snuca = vs;
      base_delta = vd;
    }
    table.add_row({std::to_string(thrashers), fmt(vs, 3), fmt(vd, 3),
                   fmt(100.0 * (1.0 - vs / base_snuca), 1) + "%",
                   fmt(100.0 * (1.0 - vd / base_delta), 1) + "%"});
    std::fflush(stdout);
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("DELTA bounds the victim's degradation (strict insertion masks keep\n"
              "the thrashers out of its ways); S-NUCA offers no such protection.\n");
  return 0;
}
