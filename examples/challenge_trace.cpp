// Visualize DELTA's distributed allocation converging: an ASCII map of
// per-bank way ownership over time for a 16-core chip where one
// cache-hungry application (mcf) runs among small-footprint neighbours and
// two idle tiles.
//
//   $ ./challenge_trace
//
// Shows the inter-bank challenge expansion (including the idle-bank fast
// path) and the intra-bank fine-tuning the paper describes in Sec. II-D.
#include <cstdio>

#include "sim/chip.hpp"
#include "sim/runner.hpp"

namespace {

using namespace delta;

void print_ownership(sim::Chip& chip) {
  // For each bank, how many ways each of a few interesting cores owns.
  std::printf("  bank:        ");
  for (int b = 0; b < chip.cores(); ++b) std::printf("%3d", b);
  std::printf("\n  mcf@0 ways:  ");
  for (int b = 0; b < chip.cores(); ++b)
    std::printf("%3d", chip.scheme().allocated_ways(chip, 0) >= 0
                           ? [&] {
                               // Count core 0's lines allowance via mask bits.
                               int n = 0;
                               auto mask = chip.scheme().insert_mask(chip, 0, b);
                               while (mask) {
                                 n += static_cast<int>(mask & 1);
                                 mask >>= 1;
                               }
                               return n;
                             }()
                           : 0);
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace delta;
  sim::MachineConfig cfg = sim::config16();
  cfg.warmup_epochs = 0;
  cfg.measure_epochs = 0;

  std::vector<std::string> apps = {"mc", "po", "sj", "na", "ze", "hm", "ga", "gr",
                                   "idle", "po", "sj", "idle", "ga", "hm", "gr", "po"};
  sim::Chip chip(cfg, apps, sim::make_scheme(sim::SchemeKind::kDelta));

  std::printf("mcf on tile 0 among small-footprint apps; tiles 8 and 11 idle.\n");
  std::printf("Ways owned by tile 0 (mcf) in every bank, epoch by epoch:\n\n");
  for (int step = 0; step < 12; ++step) {
    std::printf("epoch %3d (t=%4.1f ms), mcf total ways = %d\n",
                static_cast<int>(chip.epoch()),
                static_cast<double>(chip.epoch()) * 0.1,
                chip.scheme().allocated_ways(chip, 0));
    print_ownership(chip);
    chip.run_epochs(10, /*measuring=*/false);  // One inter-bank interval.
  }
  std::printf("\nfinal: mcf holds %d ways (%.1f MB); control messages shown by "
              "quickstart.\n",
              chip.scheme().allocated_ways(chip, 0),
              chip.scheme().allocated_ways(chip, 0) * 32.0 / 1024.0);
  return 0;
}
