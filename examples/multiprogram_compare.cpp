// Compare all four cache organisations on a user-supplied 16-app mix.
//
//   $ ./multiprogram_compare                 # defaults to Table IV's w2
//   $ ./multiprogram_compare mc xa so po sj na ze hm ga gr li bw mi de om pe
#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "sim/runner.hpp"
#include "workload/spec.hpp"

int main(int argc, char** argv) {
  using namespace delta;
  sim::MachineConfig cfg = sim::config16();
  cfg.warmup_epochs = 40;
  cfg.measure_epochs = 200;

  workload::Mix mix;
  if (argc == 17) {
    mix.name = "custom";
    for (int i = 1; i < argc; ++i) {
      if (!workload::has_spec_profile(argv[i])) {
        std::fprintf(stderr, "unknown app '%s'\n", argv[i]);
        return 1;
      }
      mix.apps.emplace_back(argv[i]);
    }
  } else if (argc == 1) {
    mix = sim::mix_for_config(cfg, "w2");
  } else {
    std::fprintf(stderr, "usage: %s [app1 .. app16]\n", argv[0]);
    return 1;
  }

  std::printf("mix %s: ", mix.name.c_str());
  for (const auto& a : mix.apps) std::printf("%s ", a.c_str());
  std::printf("\n\nrunning snuca / private / ideal-central / delta ...\n");

  const sim::SchemeComparison c = sim::compare_schemes(cfg, mix);

  TextTable table({"scheme", "geomean ipc", "speedup vs snuca", "ANTT", "STP",
                   "invalidated lines"});
  auto row = [&](const sim::MixResult& r) {
    table.add_row({r.scheme, fmt(r.geomean_ipc, 3), fmt(sim::speedup(r, c.snuca), 3),
                   fmt(sim::antt(r, c.private_llc), 3),
                   fmt(sim::stp(r, c.private_llc), 2),
                   std::to_string(r.invalidated_lines)});
  };
  row(c.snuca);
  row(c.private_llc);
  row(c.ideal);
  row(c.delta);
  std::printf("\n%s\n", table.str().c_str());
  return 0;
}
