// 64-core scalability demo: one Table IV mix replicated 4x on the 8x8-mesh
// machine, all four schemes, with NoC-distance and allocation summaries —
// the setting where locality-awareness matters most (Sec. IV-B).
//
//   $ ./scheme_shootout_64 [mix]        # default w6
#include <cstdio>
#include <string>

#include "common/stats.hpp"
#include "sim/runner.hpp"

int main(int argc, char** argv) {
  using namespace delta;
  const std::string mix_name = argc > 1 ? argv[1] : "w6";

  sim::MachineConfig cfg = sim::config64();
  cfg.warmup_epochs = 30;
  cfg.measure_epochs = 100;

  const workload::Mix mix = sim::mix_for_config(cfg, mix_name);
  std::printf("64-core shootout on %s (16-core mix replicated 4x)\n\n", mix_name.c_str());

  const sim::SchemeComparison c = sim::compare_schemes(cfg, mix);

  auto mean_hops = [](const sim::MixResult& r) {
    double h = 0.0;
    int n = 0;
    for (const auto& a : r.apps)
      if (a.llc_accesses > 0) {
        h += a.avg_hops;
        ++n;
      }
    return n ? h / n : 0.0;
  };

  TextTable table({"scheme", "geomean ipc", "speedup", "mean hops", "mean ways"});
  auto row = [&](const sim::MixResult& r) {
    double ways = 0.0;
    for (const auto& a : r.apps) ways += a.avg_ways / static_cast<double>(r.apps.size());
    table.add_row({r.scheme, fmt(r.geomean_ipc, 3), fmt(sim::speedup(r, c.snuca), 3),
                   fmt(mean_hops(r), 2), fmt(ways, 1)});
  };
  row(c.snuca);
  row(c.private_llc);
  row(c.ideal);
  row(c.delta);
  std::printf("%s\n", table.str().c_str());
  std::printf("S-NUCA pays the full mesh diameter on every access; DELTA keeps\n"
              "allocations near their tiles while still right-sizing capacity.\n");
  return 0;
}
