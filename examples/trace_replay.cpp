// Record a synthetic application's post-L2 trace to disk, replay it through
// a stand-alone LLC + UMON, and compare the replayed miss curve against the
// live generator's — the workflow a user with *real* traces would follow
// (see workload/trace_io.hpp).
//
//   $ ./trace_replay [app] [accesses]      # defaults: mcf, 500000
#include <cstdio>
#include <string>

#include "mem/cache.hpp"
#include "umon/umon.hpp"
#include "workload/generator.hpp"
#include "workload/spec.hpp"
#include "workload/trace_io.hpp"

int main(int argc, char** argv) {
  using namespace delta;
  const std::string app = argc > 1 ? argv[1] : "mc";
  const std::uint64_t n = argc > 2 ? std::stoull(argv[2]) : 500'000;
  if (!workload::has_spec_profile(app)) {
    std::fprintf(stderr, "unknown app '%s'\n", app.c_str());
    return 1;
  }
  const workload::AppProfile& profile = workload::spec_profile(app);
  const std::string path = "/tmp/delta_" + app + ".dlt";

  // 1. Record.
  {
    workload::TraceGen gen(profile, 0, 42);
    workload::TraceWriter w(path);
    for (std::uint64_t i = 0; i < n; ++i) w.append(gen.next());
    std::printf("recorded %llu accesses of %s to %s\n",
                static_cast<unsigned long long>(w.written()), profile.name.c_str(),
                path.c_str());
  }

  // 2. Replay through a 512 KB LLC bank and a UMON monitor.
  workload::TraceReader reader(path);
  mem::SetAssocCache cache(512, 16);
  umon::UmonConfig ucfg;
  ucfg.max_ways = 192;
  umon::Umon umon(ucfg);
  for (std::uint64_t i = 0; i < n; ++i) {
    const BlockAddr b = reader.next();
    cache.access(static_cast<std::uint32_t>(b & 511), b, 0, mem::full_mask(16));
    umon.access(b);
  }
  std::printf("replayed: 512KB LLC miss rate %.3f\n", cache.stats().miss_rate());

  const umon::MissCurve mc = umon.miss_curve();
  std::printf("replayed UMON miss curve (fraction of accesses missing):\n");
  for (int w = 0; w <= 192; w += 16)
    std::printf("  %3d ways (%4.1f MB): %.3f\n", w, w * 32.0 / 1024.0,
                mc.at(w) / umon.accesses());

  std::remove(path.c_str());
  return 0;
}
