// Explore a synthetic SPEC profile: stand-alone IPC at the Sec. III-B
// classification points, the UMON miss curve, and the resulting class.
//
//   $ ./miss_curve_explorer            # defaults to xalancbmk
//   $ ./miss_curve_explorer mcf
#include <cstdio>
#include <string>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "umon/umon.hpp"
#include "workload/classify.hpp"
#include "workload/generator.hpp"
#include "workload/spec.hpp"

int main(int argc, char** argv) {
  using namespace delta;
  const std::string name = argc > 1 ? argv[1] : "xa";
  if (!workload::has_spec_profile(name)) {
    std::fprintf(stderr, "unknown app '%s'; known apps:\n", name.c_str());
    for (const auto& p : workload::spec_profiles())
      std::fprintf(stderr, "  %-4s %s\n", p.short_name.c_str(), p.name.c_str());
    return 1;
  }
  const workload::AppProfile& p = workload::spec_profile(name);
  std::printf("%s (%s), class %s, footprint %.1f MB\n", p.name.c_str(),
              p.short_name.c_str(), to_string(p.cls).c_str(),
              static_cast<double>(p.footprint_bytes()) / (1 << 20));

  // Classification points.
  const workload::ClassifyResult r = workload::classify(p);
  std::printf("\nSec. III-B classification:\n");
  std::printf("  ipc @128KB = %.3f   @512KB = %.3f (%+.1f%%)   @8MB = %.3f (%+.1f%%)\n",
              r.ipc_128k, r.ipc_512k, r.improvement_low * 100.0, r.ipc_8m,
              r.improvement_med * 100.0);
  std::printf("  MPKI @8MB = %.2f  =>  class %s\n", r.mpki_8m,
              to_string(r.cls).c_str());

  // UMON miss curve as an ASCII sparkline over 0..192 ways (32 KB per way).
  umon::UmonConfig ucfg;
  ucfg.max_ways = 192;
  umon::Umon u(ucfg);
  workload::TraceGen gen(p, 0, 42);
  for (int i = 0; i < 2'000'000; ++i) u.access(gen.next());
  const umon::MissCurve mc = u.miss_curve();

  std::printf("\nUMON miss curve (misses vs. capacity, 32 KB ways):\n");
  const double top = mc.at(0);
  for (int w = 0; w <= 192; w += 8) {
    const int bar = top > 0 ? static_cast<int>(50.0 * mc.at(w) / top) : 0;
    std::printf("  %4d ways (%5.1f MB) |%s (%.0f%%)\n", w, w * 32.0 / 1024.0,
                std::string(static_cast<std::size_t>(bar), '#').c_str(),
                top > 0 ? 100.0 * mc.at(w) / top : 0.0);
  }
  return 0;
}
